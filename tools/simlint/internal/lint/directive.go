package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// The //simlint:allow directive is the single escape hatch from every
// simlint rule:
//
//	//simlint:allow <analyzer> -- <reason>
//
// The reason is mandatory: a suppression without a recorded
// justification is itself an error. A directive covers the source line
// it sits on and the line immediately below it, so both forms work:
//
//	doRisky() //simlint:allow wallclock -- operator-facing timing output
//
//	//simlint:allow rawgo -- scheduler-internal spawn, registered by hand
//	go func() { ... }()
//
// One directive names one analyzer; stack directives to suppress more
// than one. As a hard policy floor, noparkinevent may never be
// suppressed inside internal/netem or internal/tor: those are exactly
// the packages whose event paths the rule exists to protect, and a
// directive there is rejected as an error rather than honored.

// directive is one parsed, well-formed //simlint:allow comment.
type directive struct {
	analyzer string
	file     string
	line     int
}

var directiveRE = regexp.MustCompile(`^//simlint:allow\s+([A-Za-z0-9_-]+)\s+--\s*(.*)$`)

// noSuppressNoParkSegments are package-path segments in which
// noparkinevent directives are rejected outright.
var noSuppressNoParkSegments = map[string]bool{"netem": true, "tor": true}

// collectDirectives parses every //simlint:allow comment in files.
// Malformed directives (missing analyzer, unknown analyzer, empty
// reason) are returned as error diagnostics under the pseudo-analyzer
// name "directive"; they suppress nothing.
func collectDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool, pkgPath string) ([]directive, []Diagnostic) {
	var dirs []directive
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      fset.Position(pos),
			Analyzer: "directive",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	banNoPark := pathHasAnySegment(pkgPath, noSuppressNoParkSegments)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, "//simlint:") {
					continue
				}
				if !strings.HasPrefix(text, "//simlint:allow") {
					report(c.Pos(), "unknown simlint directive %q (only //simlint:allow <analyzer> -- <reason> exists)", firstField(text))
					continue
				}
				m := directiveRE.FindStringSubmatch(text)
				if m == nil || strings.TrimSpace(m[2]) == "" {
					report(c.Pos(), "malformed simlint directive: want //simlint:allow <analyzer> -- <non-empty reason>")
					continue
				}
				name := m[1]
				if !known[name] {
					report(c.Pos(), "simlint directive names unknown analyzer %q", name)
					continue
				}
				if name == "noparkinevent" && banNoPark {
					report(c.Pos(), "noparkinevent may not be suppressed in package %s: netem/tor event paths are the contract this rule protects", pkgPath)
					continue
				}
				pos := fset.Position(c.Pos())
				dirs = append(dirs, directive{analyzer: name, file: pos.Filename, line: pos.Line})
			}
		}
	}
	return dirs, diags
}

// suppressed reports whether a directive covers d: same analyzer, same
// file, directive on the diagnostic's line or the line above.
func suppressed(dirs []directive, d Diagnostic) bool {
	for _, dir := range dirs {
		if dir.analyzer == d.Analyzer && dir.file == d.Pos.Filename &&
			(dir.line == d.Pos.Line || dir.line == d.Pos.Line-1) {
			return true
		}
	}
	return false
}

// pathHasAnySegment reports whether any "/"-separated segment of path is
// in set.
func pathHasAnySegment(path string, set map[string]bool) bool {
	for _, seg := range strings.Split(path, "/") {
		// Test variants carry a " [pkg.test]" suffix on the final
		// segment; strip it so policy decisions match the real package.
		if i := strings.IndexByte(seg, ' '); i >= 0 {
			seg = seg[:i]
		}
		if set[seg] {
			return true
		}
	}
	return false
}

func firstField(s string) string {
	f := strings.Fields(strings.TrimPrefix(s, "//"))
	if len(f) == 0 {
		return s
	}
	return f[0]
}
