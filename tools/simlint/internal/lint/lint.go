// Package lint is a minimal go/analysis-style framework for the simlint
// vettool. It exists because this repository builds offline against the
// standard library only: golang.org/x/tools is not available, so the
// Analyzer/Pass surface, the go-vet unitchecker protocol and the
// analysistest harness are reimplemented here in the smallest form the
// five simlint analyzers need. The shape deliberately mirrors
// golang.org/x/tools/go/analysis so the analyzers can migrate verbatim
// if that dependency ever lands.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named static check. Run inspects a single type-checked
// package via the Pass and reports findings with Pass.Reportf.
type Analyzer struct {
	// Name is the identifier used in diagnostics and in
	// //simlint:allow directives. Lowercase, no spaces.
	Name string
	// Doc is the one-paragraph description shown by usage text and
	// DESIGN.md's rule table.
	Doc string
	// Run performs the check.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one reported finding, positioned and attributed to the
// analyzer that produced it.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// Analyzers whose contract covers only simulation code proper (rawgo,
// maprange) use it to exempt test drivers.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	name := p.Fset.Position(pos).Filename
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}

// RunPackage runs every analyzer over one type-checked package, applies
// the //simlint:allow directive layer (see directive.go) and returns the
// surviving diagnostics sorted by position. Directive-syntax errors are
// themselves diagnostics (analyzer "directive") and cannot be
// suppressed.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	directives, diags := collectDirectives(fset, files, known, pkg.Path())

	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			diags:     &raw,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	for _, d := range raw {
		if !suppressed(directives, d) {
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
