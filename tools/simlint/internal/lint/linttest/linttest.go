// Package linttest is simlint's analysistest: it loads a testdata
// module with the same loader the standalone tool uses, runs the
// analyzer suite, and checks the diagnostics against expectations
// written in the sources as
//
//	code() // want "regexp" "another regexp"
//
// following the golang.org/x/tools analysistest convention (which this
// offline build cannot import). Each double-quoted Go string is a
// regular expression matched against `<message> [<analyzer>]` of a
// diagnostic reported on that line; expectations and diagnostics must
// match one-to-one per line.
package linttest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ptperf/tools/simlint/internal/lint"
	"ptperf/tools/simlint/internal/load"
)

// expectation is one `// want` pattern at a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads patterns from the module rooted at dir, runs analyzers over
// every matched package, and reports any mismatch between diagnostics
// and `// want` expectations as test errors.
func Run(t *testing.T, dir string, analyzers []*lint.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := load.Load(dir, false, patterns...)
	if err != nil {
		t.Fatalf("loading %s %v: %v", dir, patterns, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages matched %v under %s", patterns, dir)
	}
	for _, p := range pkgs {
		diags, err := lint.RunPackage(p.Fset, p.Files, p.Pkg, p.Info, analyzers)
		if err != nil {
			t.Fatalf("%s: %v", p.ImportPath, err)
		}
		wants := collectWants(t, p.Fset, p.Files)
		check(t, p.ImportPath, diags, wants)
	}
}

// collectWants parses every `// want` comment in files.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// The marker may open the comment or trail other text —
				// the latter lets a //simlint:allow directive that is
				// itself expected to be rejected carry an expectation.
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				text := c.Text[idx+len("// want "):]
				pos := fset.Position(c.Pos())
				pats, err := splitPatterns(text)
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				for _, pat := range pats {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitPatterns decodes a sequence of double-quoted or backquoted Go
// strings (backquotes keep regexp backslashes readable).
func splitPatterns(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		if s[0] == '`' {
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated pattern in %q", s)
			}
			out = append(out, s[1:end+1])
			s = s[end+2:]
			continue
		}
		if s[0] != '"' {
			return nil, fmt.Errorf("want patterns must be quoted strings, got %q", s)
		}
		// Find the closing quote, honoring escapes.
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern in %q", s)
		}
		pat, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, fmt.Errorf("unquoting %q: %v", s[:end+1], err)
		}
		out = append(out, pat)
		s = s[end+1:]
	}
	return out, nil
}

// check matches diagnostics against expectations one-to-one per line.
func check(t *testing.T, importPath string, diags []lint.Diagnostic, wants []*expectation) {
	t.Helper()
	for _, d := range diags {
		target := fmt.Sprintf("%s [%s]", d.Message, d.Analyzer)
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(target) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic:\n  %s", importPath, d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", importPath, w.file, w.line, w.re)
		}
	}
}
