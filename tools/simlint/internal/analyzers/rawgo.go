package analyzers

import (
	"go/ast"

	"ptperf/tools/simlint/internal/lint"
)

// RawGo forbids raw `go` statements in simulation packages: every
// goroutine participating in a simulation must enter through Clock.Go
// so that the goroutine registry, the leak invariants
// (Clock.Registered sampling) and the deterministic start order hold.
// A goroutine the scheduler cannot see either stalls the virtual clock
// or lets it advance past work still pending.
//
// Scope: non-test files of simulation packages only. Test files are
// exempt — tests drive the simulator from outside (raw pipes without a
// clock, concurrent assertion helpers), and the leak invariants already
// police what runs inside a world. Non-simulation packages (the sim
// shard executor, obs monitors, cmd/tools) spawn OS goroutines
// legitimately.
var RawGo = &lint.Analyzer{
	Name: "rawgo",
	Doc: "forbid raw go statements in simulation packages; " +
		"goroutines must enter through Clock.Go",
	Run: runRawGo,
}

func runRawGo(pass *lint.Pass) error {
	if !isSimPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if pass.IsTestFile(g.Pos()) {
				return true
			}
			pass.Reportf(g.Pos(),
				"raw go statement in simulation package %s: spawn via Clock.Go so the goroutine is registered with the scheduler",
				pass.Pkg.Path())
			return true
		})
	}
	return nil
}
