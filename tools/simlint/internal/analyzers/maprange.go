package analyzers

import (
	"go/ast"
	"go/types"

	"ptperf/tools/simlint/internal/lint"
)

// MapRange flags `range` over a map in report/render/digest packages
// (harness, obs, simtest, plot, stats, benchdiff): Go randomizes map
// iteration order per run, so any map range whose effects can reach
// report bytes forks same-seed outputs. Two shapes are recognized as
// safe automatically:
//
//   - key collection followed by a sort: the loop body only appends to
//     slice variables (optionally behind an if), and every such slice
//     is later passed to a sort.* / slices.Sort* call in the same
//     function. Order is established by the sort, not the map.
//
// Everything else — including commutative aggregations (integer sums,
// map-to-map copies, max tracking) — needs an explicit
// //simlint:allow maprange -- <why order cannot reach output>
// directive, so each site's order-independence argument is recorded
// where the next reader (and the next refactor) can see it. Note that
// float accumulation is NOT commutative (rounding depends on order) and
// must be sorted, not annotated.
//
// Scope: non-test files only; test helpers assert rather than render.
var MapRange = &lint.Analyzer{
	Name: "maprange",
	Doc: "flag range over a map in report/render/digest packages unless " +
		"keys are collected and sorted, or the site carries a commutativity justification",
	Run: runMapRange,
}

func runMapRange(pass *lint.Pass) error {
	if !isRenderPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		var funcStack []ast.Node // enclosing FuncDecl/FuncLit bodies
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					funcStack = append(funcStack, n.Body)
					ast.Inspect(n.Body, walk)
					funcStack = funcStack[:len(funcStack)-1]
				}
				return false
			case *ast.FuncLit:
				funcStack = append(funcStack, n.Body)
				ast.Inspect(n.Body, walk)
				funcStack = funcStack[:len(funcStack)-1]
				return false
			case *ast.RangeStmt:
				checkMapRange(pass, n, enclosing(funcStack))
				return true
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

func enclosing(stack []ast.Node) ast.Node {
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

func checkMapRange(pass *lint.Pass, rs *ast.RangeStmt, fnBody ast.Node) {
	if pass.IsTestFile(rs.Pos()) {
		return
	}
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if targets, pure := collectOnlyBody(pass.TypesInfo, rs.Body); pure && len(targets) > 0 {
		if fnBody != nil && allSortedAfter(pass.TypesInfo, fnBody, rs, targets) {
			return
		}
	}
	pass.Reportf(rs.Pos(),
		"iteration over map %s has nondeterministic order in render/report code; collect+sort the keys, or annotate //simlint:allow maprange -- <why order cannot reach output>",
		exprString(rs.X))
}

// collectOnlyBody reports whether every statement in the loop body is a
// slice append `x = append(x, ...)` (optionally nested in if/blocks,
// with continue allowed), returning the appended-to variables.
func collectOnlyBody(info *types.Info, body *ast.BlockStmt) (targets []*types.Var, pure bool) {
	pure = true
	var visit func(s ast.Stmt)
	visit = func(s ast.Stmt) {
		if !pure {
			return
		}
		switch s := s.(type) {
		case *ast.BlockStmt:
			for _, st := range s.List {
				visit(st)
			}
		case *ast.IfStmt:
			visit(s.Body)
			if s.Else != nil {
				visit(s.Else)
			}
		case *ast.BranchStmt:
			// continue/break carry no effects.
		case *ast.AssignStmt:
			v := appendTarget(info, s)
			if v == nil {
				pure = false
				return
			}
			targets = append(targets, v)
		default:
			pure = false
		}
	}
	visit(body)
	return targets, pure
}

// appendTarget matches `x = append(x, ...)` / `x := append(x, ...)` and
// returns x's variable, or nil.
func appendTarget(info *types.Info, s *ast.AssignStmt) *types.Var {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return nil
	}
	lhs, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil
	}
	if b, ok := info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	arg0, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || arg0.Name != lhs.Name {
		return nil
	}
	v := identVar(info, lhs)
	if v == nil || v != identVar(info, arg0) {
		return nil
	}
	return v
}

func identVar(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// allSortedAfter reports whether every target variable is passed to a
// sort.*/slices.Sort* call positioned after the range statement within
// the enclosing function body.
func allSortedAfter(info *types.Info, fnBody ast.Node, rs *ast.RangeStmt, targets []*types.Var) bool {
	sorted := make(map[*types.Var]bool)
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		if !sortFuncs[fn.Name()] {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if v := identVar(info, id); v != nil {
					sorted[v] = true
				}
			}
		}
		return true
	})
	for _, v := range targets {
		if !sorted[v] {
			return false
		}
	}
	return true
}

// sortFuncs are the sort/slices package functions accepted as
// establishing a deterministic order.
var sortFuncs = map[string]bool{
	// package sort
	"Strings": true, "Ints": true, "Float64s": true,
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	// package slices
	"SortFunc": true, "SortStableFunc": true,
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.ParenExpr:
		return exprString(e.X)
	}
	return "expression"
}
