package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"ptperf/tools/simlint/internal/lint"
)

// NoParkInEvent enforces the PR-9 inline-event contract documented in
// netem's Clock.EventAt: an event callback executes on the dispatching
// goroutine with the scheduler's active count at zero, so any parking
// wait inside it panics at runtime as an unregistered-goroutine wait —
// and only on the seed/schedule that happens to contend. This analyzer
// finds those paths at compile time.
//
// Roots (the event-callback entry points):
//   - the callback argument of (netem.Clock).EventAt — including
//     callbacks stored in struct fields first (p.sinkFn, s.flushFn):
//     every function ever assigned to such a field in the package is
//     treated as a root;
//   - the sink argument of (netem.Conn).SetReadSink and the package-
//     internal (netem.pipe).setSink — which covers the tor cell sinks
//     (cellSink, clientCell, backwardSink) and the relay scheduler's
//     flush pass, both armed through these APIs.
//
// From each root the analyzer walks the intra-package static call graph
// (direct calls to functions and methods declared in the same package,
// plus immediately-analyzable function literals). Reaching any parking
// primitive is an error:
//   - netem scheduler waits: Clock.Sleep/SleepUntil, Cond.Wait/WaitVT/
//     WaitDeadline, Mutex.Lock, WaitGroup.Wait, Chan.Send/Recv/
//     RecvTimeout;
//   - netem conn/pipe operations that park on backpressure or arrival:
//     Conn.Read/ReadFull/Write/WriteOwned, pipe.pop/popFull/push;
//   - interface escape hatches that reach the same parking code
//     dynamically: (net.Conn).Read/Write, (io.Reader).Read,
//     (io.Writer).Write, and io.ReadFull/ReadAtLeast/Copy/CopyN/
//     CopyBuffer.
//
// The legal surface inside a callback is the non-parking one:
// Conn.TryWriteOwned, Chan.TrySend, Mutex.TryLock, Clock.Go (the
// spawned function is a registered goroutine and may park — its body is
// deliberately NOT traversed), and arming further EventAt events.
//
// Known limits (by design, per-package analysis without cross-package
// facts): calls into other packages' non-primitive functions are not
// traversed, and calls through arbitrary function values or interfaces
// other than the registry above are invisible. The runtime panic in
// Clock.park remains the backstop for those; this analyzer makes the
// overwhelmingly common direct paths a compile-time error instead.
var NoParkInEvent = &lint.Analyzer{
	Name: "noparkinevent",
	Doc: "functions reachable from Clock.EventAt arms and Conn.SetReadSink sinks " +
		"must never reach a parking primitive; only the non-parking surface is allowed",
	Run: runNoParkInEvent,
}

// parkingMethods lists (package match, receiver type, method) parking
// primitives. pkg "netem" matches by final import-path segment; "net"
// and "io" match the standard-library paths exactly.
type primKey struct{ pkg, recv, name string }

var parkingMethods = map[primKey]string{
	{"netem", "Clock", "Sleep"}:        "parks until a virtual instant",
	{"netem", "Clock", "SleepUntil"}:   "parks until a virtual instant",
	{"netem", "Cond", "Wait"}:          "parks until broadcast",
	{"netem", "Cond", "WaitVT"}:        "parks until broadcast or deadline",
	{"netem", "Cond", "WaitDeadline"}:  "parks until broadcast or deadline",
	{"netem", "Mutex", "Lock"}:         "parks while contended (use TryLock)",
	{"netem", "WaitGroup", "Wait"}:     "parks until the counter drains",
	{"netem", "Chan", "Send"}:          "parks while full (use TrySend)",
	{"netem", "Chan", "Recv"}:          "parks while empty",
	{"netem", "Chan", "RecvTimeout"}:   "parks while empty",
	{"netem", "Conn", "Read"}:          "parks until arrival",
	{"netem", "Conn", "ReadFull"}:      "parks until the record completes",
	{"netem", "Conn", "Write"}:         "parks on receive-window backpressure (use TryWriteOwned)",
	{"netem", "Conn", "WriteOwned"}:    "parks on receive-window backpressure (use TryWriteOwned)",
	{"netem", "pipe", "pop"}:           "parks until arrival",
	{"netem", "pipe", "popFull"}:       "parks until the record completes",
	{"netem", "pipe", "push"}:          "parks on receive-window backpressure (use tryPush)",
	{"net", "Conn", "Read"}:            "dynamic dispatch into a parking Read",
	{"net", "Conn", "Write"}:           "dynamic dispatch into a parking Write",
	{"io", "Reader", "Read"}:           "dynamic dispatch into a parking Read",
	{"io", "Writer", "Write"}:          "dynamic dispatch into a parking Write",
	{"io", "ReadWriter", "Read"}:       "dynamic dispatch into a parking Read",
	{"io", "ReadWriter", "Write"}:      "dynamic dispatch into a parking Write",
	{"io", "ReadCloser", "Read"}:       "dynamic dispatch into a parking Read",
	{"io", "WriteCloser", "Write"}:     "dynamic dispatch into a parking Write",
	{"io", "ReadWriteCloser", "Read"}:  "dynamic dispatch into a parking Read",
	{"io", "ReadWriteCloser", "Write"}: "dynamic dispatch into a parking Write",
	{"io", "", "ReadFull"}:             "loops over a parking Read",
	{"io", "", "ReadAtLeast"}:          "loops over a parking Read",
	{"io", "", "Copy"}:                 "loops over parking Read/Write",
	{"io", "", "CopyN"}:                "loops over parking Read/Write",
	{"io", "", "CopyBuffer"}:           "loops over parking Read/Write",
}

// parkingPrimitive reports whether f is a registered parking primitive,
// returning a description when it is.
func parkingPrimitive(f *types.Func) (string, string, bool) {
	if f == nil || f.Pkg() == nil {
		return "", "", false
	}
	pkgPath := f.Pkg().Path()
	pkgKey := pkgPath
	if lastSegment(pkgPath) == "netem" {
		pkgKey = "netem"
	}
	recv := recvTypeName(f)
	if why, ok := parkingMethods[primKey{pkgKey, recv, f.Name()}]; ok {
		label := f.Name()
		if recv != "" {
			label = "(" + lastSegment(pkgPath) + "." + recv + ")." + f.Name()
		} else {
			label = lastSegment(pkgPath) + "." + f.Name()
		}
		return label, why, true
	}
	return "", "", false
}

// contextSwitchers are netem Clock/Conn/pipe methods whose function-
// literal argument runs in a different context than the caller: Go's
// argument becomes a registered goroutine (may park), EventAt's and the
// sink setters' arguments are event callbacks (collected as roots
// separately). The walker does not descend into these literals.
func contextSwitchArg(f *types.Func) int {
	switch {
	case isMethodOf(f, "netem", "Clock", "Go"):
		return 0
	case isMethodOf(f, "netem", "Clock", "EventAt"):
		return 1
	case isMethodOf(f, "netem", "Conn", "SetReadSink"):
		return 0
	case isMethodOf(f, "netem", "pipe", "setSink"):
		return 0
	}
	return -1
}

// root is one event-callback entry point.
type root struct {
	node ast.Node // *ast.FuncLit body-bearing node or *ast.FuncDecl
	desc string   // human description, e.g. "Clock.EventAt arm at pipe.go:254"
}

func runNoParkInEvent(pass *lint.Pass) error {
	a := &noParkAnalysis{
		pass:     pass,
		decls:    map[*types.Func]*ast.FuncDecl{},
		fieldFns: map[*types.Var][]ast.Expr{},
		visited:  map[ast.Node]bool{},
		reported: map[token.Pos]bool{},
	}
	a.index()
	roots := a.collectRoots()
	for _, r := range roots {
		a.walkContext(r.node, r.desc, nil)
	}
	return nil
}

type noParkAnalysis struct {
	pass     *lint.Pass
	decls    map[*types.Func]*ast.FuncDecl
	fieldFns map[*types.Var][]ast.Expr // func-typed field -> every RHS assigned to it
	visited  map[ast.Node]bool
	reported map[token.Pos]bool
}

// index builds the package's function-declaration table and the
// field-assignment table used to resolve callbacks stored in struct
// fields (p.sinkFn = p.sinkEvent).
func (a *noParkAnalysis) index() {
	info := a.pass.TypesInfo
	for _, f := range a.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if obj, ok := info.Defs[n.Name].(*types.Func); ok && n.Body != nil {
					a.decls[obj] = n
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if v, ok := info.Selections[sel]; ok {
						if fv, ok := v.Obj().(*types.Var); ok && fv.IsField() && isFuncType(fv.Type()) {
							a.fieldFns[fv] = append(a.fieldFns[fv], n.Rhs[i])
						}
					}
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					if fv, ok := info.Uses[key].(*types.Var); ok && fv.IsField() && isFuncType(fv.Type()) {
						a.fieldFns[fv] = append(a.fieldFns[fv], kv.Value)
					}
				}
			}
			return true
		})
	}
}

func isFuncType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

// collectRoots finds every event-arming call in the package and
// resolves its callback argument to analyzable function nodes.
func (a *noParkAnalysis) collectRoots() []root {
	var roots []root
	info := a.pass.TypesInfo
	for _, f := range a.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			idx := -1
			var kind string
			switch {
			case isMethodOf(fn, "netem", "Clock", "EventAt"):
				idx, kind = 1, "Clock.EventAt arm"
			case isMethodOf(fn, "netem", "Conn", "SetReadSink"):
				idx, kind = 0, "Conn.SetReadSink sink"
			case isMethodOf(fn, "netem", "pipe", "setSink"):
				idx, kind = 0, "pipe.setSink sink"
			default:
				return true
			}
			if idx >= len(call.Args) {
				return true
			}
			at := a.pass.Fset.Position(call.Pos())
			desc := kind + " at " + shortPos(at)
			for _, node := range a.resolveCallback(call.Args[idx], 0) {
				roots = append(roots, root{node: node, desc: desc})
			}
			return true
		})
	}
	return roots
}

// resolveCallback maps a callback expression to the function nodes it
// can denote: a literal, a function/method declared in this package, or
// — for struct-field callbacks — everything ever assigned to the field.
func (a *noParkAnalysis) resolveCallback(e ast.Expr, depth int) []ast.Node {
	if depth > 4 { // defensive bound on field -> field chains
		return nil
	}
	info := a.pass.TypesInfo
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return []ast.Node{e}
	case *ast.Ident:
		if f, ok := info.Uses[e].(*types.Func); ok {
			if d := a.decls[f]; d != nil {
				return []ast.Node{d}
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			switch obj := sel.Obj().(type) {
			case *types.Func: // method value: circ.cellSink
				if d := a.decls[obj]; d != nil {
					return []ast.Node{d}
				}
			case *types.Var: // func-typed field: p.sinkFn
				if obj.IsField() {
					var out []ast.Node
					for _, rhs := range a.fieldFns[obj] {
						out = append(out, a.resolveCallback(rhs, depth+1)...)
					}
					return out
				}
			}
		} else if f, ok := info.Uses[e.Sel].(*types.Func); ok { // pkg.Fn
			if d := a.decls[f]; d != nil {
				return []ast.Node{d}
			}
		}
	}
	return nil
}

// walkContext traverses one function node in event-callback context,
// reporting parking-primitive calls and following intra-package calls.
// chain carries the call path from the root for diagnostics.
func (a *noParkAnalysis) walkContext(node ast.Node, rootDesc string, chain []string) {
	if a.visited[node] {
		return
	}
	a.visited[node] = true
	var body *ast.BlockStmt
	name := "func literal"
	switch n := node.(type) {
	case *ast.FuncDecl:
		body = n.Body
		name = n.Name.Name
		if n.Recv != nil {
			name = recvName(n) + "." + name
		}
	case *ast.FuncLit:
		body = n.Body
	}
	if body == nil {
		return
	}
	chain = append(chain, name)
	info := a.pass.TypesInfo

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if label, why, isPark := parkingPrimitive(fn); isPark {
			if !a.reported[call.Pos()] {
				a.reported[call.Pos()] = true
				a.pass.Reportf(call.Pos(),
					"%s %s inside an event callback (%s, via %s); event callbacks must never park — use the non-parking surface (TryWriteOwned, TrySend, TryLock, Clock.Go, EventAt)",
					label, why, rootDesc, strings.Join(chain, " → "))
			}
			return true
		}
		// Do not descend into function literals that switch context
		// (Clock.Go goroutines; EventAt/sink arguments are separate
		// roots). Other arguments of those calls are still walked.
		if idx := contextSwitchArg(fn); idx >= 0 {
			for i, arg := range call.Args {
				if i == idx {
					continue
				}
				ast.Inspect(arg, walk)
			}
			ast.Inspect(call.Fun, walk)
			return false
		}
		if fn != nil {
			if d := a.decls[fn]; d != nil {
				a.walkContext(d, rootDesc, chain)
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

func recvName(d *ast.FuncDecl) string {
	if len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver Chan[T]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func shortPos(p token.Position) string {
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name + ":" + strconv.Itoa(p.Line)
}
