package analyzers

import (
	"go/ast"

	"ptperf/tools/simlint/internal/lint"
)

// Wallclock forbids reading or waiting on the wall clock anywhere in
// the module. Virtual time is the only time simulation code may
// observe (netem Clock.Now/Sleep, Cond.WaitVT, VirtualDeadline); one
// stray time.Now() silently destroys byte-identical determinism, and a
// wall-clock SetDeadline instant decodes as a deadline ~74 years before
// netem.Epoch. The rule is module-wide rather than scoped to the
// simulation packages: non-simulation code (CLI timing output, bench
// tooling) may legitimately read the wall clock, but must say so with
// //simlint:allow wallclock -- <reason> so every wall-clock read in the
// tree is a recorded decision.
var Wallclock = &lint.Analyzer{
	Name: "wallclock",
	Doc: "forbid wall-clock reads/waits (time.Now, Sleep, After, Since, ...); " +
		"virtual time comes from the netem clock",
	Run: runWallclock,
}

// wallclockBanned are the package-level time functions that read or
// wait on the wall clock. Constructors of inert values (time.Date,
// time.Unix, time.Duration arithmetic, time.Parse) are fine.
var wallclockBanned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
	"Since":     true,
	"Until":     true,
}

func runWallclock(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if recvTypeName(fn) != "" || !wallclockBanned[fn.Name()] {
				return true
			}
			hint := "use the netem clock (Clock.Now/Sleep, Cond.WaitVT, VirtualDeadline)"
			if !isSimPkg(pass.Pkg.Path()) {
				hint = "outside simulation code, annotate //simlint:allow wallclock -- <reason>"
			}
			pass.Reportf(call.Pos(), "wall-clock time.%s breaks the determinism contract; %s", fn.Name(), hint)
			return true
		})
	}
	return nil
}
