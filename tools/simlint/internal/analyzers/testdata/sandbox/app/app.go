// Package app exercises the noparkinevent analyzer from outside the
// netem/tor no-suppress zone: roots are EventAt arms and SetReadSink
// sinks; reaching a parking primitive is an error; the non-parking
// surface and Clock.Go bodies are legal; a justified directive is
// honored here.
package app

import (
	"io"

	"sandbox/netem"
)

type proc struct {
	clock *netem.Clock
	conn  *netem.Conn
	mu    netem.Mutex
	ch    *netem.Chan[int]
	fn    func()
}

// badLiteral arms a literal callback that parks directly.
func badLiteral(c *netem.Clock, mu *netem.Mutex) {
	c.EventAt(0, func() {
		mu.Lock() // want `\(netem\.Mutex\)\.Lock parks while contended.*Clock\.EventAt arm.*\[noparkinevent\]`
	})
}

// badTransitive arms a method whose callee's callee parks.
func badTransitive(p *proc) {
	p.clock.EventAt(0, p.step)
}

func (p *proc) step() {
	p.helper()
}

func (p *proc) helper() {
	p.ch.Send(1) // want `\(netem\.Chan\)\.Send parks while full.*via proc\.step → proc\.helper`
}

// badSink installs a read sink that writes with the parking Write.
func badSink(p *proc) {
	p.conn.SetReadSink(func(data []byte, err error) {
		p.conn.Write(data) // want `\(netem\.Conn\)\.Write parks on receive-window backpressure.*Conn\.SetReadSink sink`
	})
}

// badField stores the callback in a func-typed field before arming it;
// the analyzer resolves the field through its assignments.
func badField(p *proc) {
	p.fn = p.onEvent
	p.clock.EventAt(0, p.fn)
}

func (p *proc) onEvent() {
	io.Copy(io.Discard, p.conn) // want `io\.Copy loops over parking Read/Write`
}

// good stays on the non-parking surface; the Clock.Go body is a
// registered goroutine and may park.
func good(p *proc) {
	p.clock.EventAt(0, func() {
		if p.mu.TryLock() {
			p.mu.Unlock()
		}
		p.ch.TrySend(1)
		p.conn.TryWriteOwned(nil, nil)
		p.clock.EventAt(1, func() {})
		p.clock.Go(func() {
			p.mu.Lock()
			p.mu.Unlock()
		})
	})
}

// allowed: outside netem/tor, a directive with a recorded reason is
// honored.
func allowed(p *proc) {
	p.clock.EventAt(0, func() {
		//simlint:allow noparkinevent -- sandbox fixture: provably uncontended here
		p.mu.Lock()
	})
}
