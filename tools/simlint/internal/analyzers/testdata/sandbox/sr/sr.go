// Package sr exercises the seededrand analyzer: top-level math/rand
// draws are banned; seeded *rand.Rand instances are the legal surface.
package sr

import "math/rand"

func bad() int {
	rand.Shuffle(3, func(i, j int) {}) // want `top-level rand\.Shuffle draws from the unseeded global source.*\[seededrand\]`
	_ = rand.Float64()                 // want `top-level rand\.Float64`
	return rand.Intn(10)               // want `top-level rand\.Intn`
}

// good draws only from an explicitly seeded generator.
func good(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, 1.1, 1, 100)
	return r.Intn(10) + int(z.Uint64())
}

// allowed records why a global draw is tolerable here.
func allowed() int {
	return rand.Int() //simlint:allow seededrand -- non-reproducible jitter for an operator-facing demo
}
