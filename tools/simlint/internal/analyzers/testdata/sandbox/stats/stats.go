// Package stats exercises the maprange analyzer (this is a render
// package by segment): map iteration must be sorted or justified.
package stats

import "sort"

func bad(m map[string]int) int {
	total := 0
	for _, v := range m { // want `iteration over map m has nondeterministic order.*\[maprange\]`
		total += v
	}
	return total
}

// collectNoSort collects keys but never sorts them, so map order leaks.
func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `iteration over map m has nondeterministic order`
		keys = append(keys, k)
	}
	return keys
}

// goodSorted is the collect-keys-then-sort shape the analyzer accepts
// without annotation.
func goodSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		if k == "" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// allowed records why this unsorted iteration cannot reach output.
func allowed(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	//simlint:allow maprange -- map-to-map copy; per-key writes commute
	for k, v := range m {
		out[k] = v
	}
	return out
}

// nonMap ranges are out of scope.
func nonMap(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}
