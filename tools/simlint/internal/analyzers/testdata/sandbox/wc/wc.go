// Package wc exercises the wallclock analyzer outside simulation
// packages: the rule is module-wide, with the hint pointing at the
// directive escape hatch.
package wc

import "time"

func bad() time.Time {
	time.Sleep(time.Second)        // want `wall-clock time\.Sleep breaks the determinism contract.*\[wallclock\]`
	<-time.After(time.Second)      // want `wall-clock time\.After`
	_ = time.Since(time.Time{})    // want `wall-clock time\.Since`
	_ = time.NewTimer(time.Second) // want `wall-clock time\.NewTimer`
	return time.Now()              // want `wall-clock time\.Now`
}

// good uses only inert time constructors and arithmetic.
func good() time.Duration {
	t := time.Date(2100, 1, 1, 0, 0, 0, 0, time.UTC)
	return t.Sub(time.Unix(0, 0)) + 3*time.Second
}

// allowed records why this wall-clock read is legitimate.
func allowed() time.Time {
	//simlint:allow wallclock -- operator-facing timing output, not simulation state
	return time.Now()
}
