// Package tor exercises the no-suppress policy: inside a package whose
// path has a netem or tor segment, a noparkinevent directive is itself
// an error and suppresses nothing.
package tor

import "sandbox/netem"

type sched struct {
	clock *netem.Clock
	mu    netem.Mutex
}

func (s *sched) arm() {
	s.clock.EventAt(0, s.flush)
}

func (s *sched) flush() {
	//simlint:allow noparkinevent -- not honored here // want `noparkinevent may not be suppressed in package sandbox/tor.*\[directive\]`
	s.mu.Lock() // want `\(netem\.Mutex\)\.Lock parks while contended`
}
