// Package netem is a stub of ptperf/internal/netem for the simlint
// analysistest sandbox: the analyzers match netem primitives by the
// final import-path segment, receiver type and method name, so these
// empty shells stand in for the real scheduler.
package netem

import "time"

type Clock struct{}

func (c *Clock) Now() time.Duration                  { return 0 }
func (c *Clock) Sleep(d time.Duration)               {}
func (c *Clock) SleepUntil(vt time.Duration)         {}
func (c *Clock) Go(fn func())                        {}
func (c *Clock) EventAt(vt time.Duration, fn func()) {}

type Mutex struct{}

func (m *Mutex) Lock()         {}
func (m *Mutex) TryLock() bool { return true }
func (m *Mutex) Unlock()       {}

type Cond struct{}

func (cd *Cond) Wait()                         {}
func (cd *Cond) WaitVT(vt time.Duration) bool  { return false }
func (cd *Cond) WaitDeadline(t time.Time) bool { return false }
func (cd *Cond) Broadcast()                    {}

type WaitGroup struct{}

func (w *WaitGroup) Add(n int) {}
func (w *WaitGroup) Done()     {}
func (w *WaitGroup) Wait()     {}

type Chan[T any] struct{}

func (ch *Chan[T]) Send(v T)         {}
func (ch *Chan[T]) TrySend(v T) bool { return true }
func (ch *Chan[T]) Recv() (T, bool) {
	var zero T
	return zero, false
}
func (ch *Chan[T]) RecvTimeout(d time.Duration) (T, bool, bool) {
	var zero T
	return zero, false, false
}

type Conn struct{}

func (c *Conn) Read(p []byte) (int, error)                         { return 0, nil }
func (c *Conn) ReadFull(p []byte) (int, error)                     { return 0, nil }
func (c *Conn) Write(p []byte) (int, error)                        { return 0, nil }
func (c *Conn) WriteOwned(p []byte, base *[]byte) (int, error)     { return 0, nil }
func (c *Conn) TryWriteOwned(p []byte, base *[]byte) (bool, error) { return true, nil }
func (c *Conn) SetReadSink(sink func(data []byte, err error))      {}
