module sandbox

go 1.22
