// Package faults exercises the rawgo analyzer (this is a simulation
// package by segment) plus the simulation-package hint of wallclock.
package faults

import (
	"time"

	"sandbox/netem"
)

func bad(c *netem.Clock) {
	go func() {}()          // want `raw go statement in simulation package sandbox/faults.*\[rawgo\]`
	time.Sleep(time.Second) // want `wall-clock time\.Sleep breaks the determinism contract; use the netem clock`
	_ = c
}

// good spawns through the scheduler.
func good(c *netem.Clock) {
	c.Go(func() {})
}

// allowed records why this goroutine may bypass the scheduler.
func allowed() {
	//simlint:allow rawgo -- drains an OS-level resource; never touches virtual time
	go func() {}()
}
