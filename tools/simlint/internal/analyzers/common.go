// Package analyzers holds the five simlint analyzers that turn
// DESIGN.md's "Determinism contract" and "Inline event execution"
// sections into machine-checked rules. See each analyzer's Doc and
// DESIGN.md "Static enforcement of the determinism contract".
package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"ptperf/tools/simlint/internal/lint"
)

// All returns the full simlint analyzer suite in stable order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{Wallclock, SeededRand, NoParkInEvent, RawGo, MapRange}
}

// simSegments classifies simulation packages: code in a package whose
// import path contains one of these segments runs (at least partly) on
// the virtual clock and is bound by the full determinism contract —
// goroutines enter through Clock.Go, time comes from the netem clock.
// The segment match (rather than exact paths) lets the analysistest
// sandboxes and the seeded-violation scratch module stand in for the
// real tree: sandbox/netem is a simulation package exactly like
// ptperf/internal/netem.
var simSegments = map[string]bool{
	"netem":   true,
	"tor":     true,
	"pt":      true,
	"censor":  true,
	"faults":  true,
	"testbed": true,
	"harness": true,
	"fetch":   true,
	"web":     true,
	"socks":   true,
	"simtest": true,
}

// renderSegments classifies report/render/digest packages: code whose
// output bytes (reports, Prometheus text, HTML, fuzz digests, bench
// tables) must not depend on Go's randomized map iteration order.
var renderSegments = map[string]bool{
	"harness":   true,
	"obs":       true,
	"simtest":   true,
	"plot":      true,
	"stats":     true,
	"benchdiff": true,
}

// isSimPkg reports whether the package at path is simulation code.
func isSimPkg(path string) bool { return pathHasAnySegment(path, simSegments) }

// isRenderPkg reports whether the package at path renders report bytes.
func isRenderPkg(path string) bool { return pathHasAnySegment(path, renderSegments) }

func pathHasAnySegment(path string, set map[string]bool) bool {
	for _, seg := range strings.Split(path, "/") {
		// go vet analyzes test variants under "pkg [pkg.test]" IDs;
		// strip the suffix so classification matches the real package.
		if i := strings.IndexByte(seg, ' '); i >= 0 {
			seg = seg[:i]
		}
		if set[seg] {
			return true
		}
	}
	return false
}

// lastSegment returns the final "/"-separated element of an import path
// (with any " [pkg.test]" test-variant suffix stripped).
func lastSegment(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return path
}

// calleeFunc resolves the static callee of a call expression: a
// package-level function, a method on a concrete type, or an interface
// method. Calls through function-typed values resolve to nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// recvTypeName returns the name of a method's receiver named type
// ("Clock" for (*Clock).EventAt), or "" for package-level functions.
// Pointerness and type parameters are stripped.
func recvTypeName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Interface:
		// Interface receivers reach here for methods spelled on an
		// unnamed interface; named interfaces arrive as *types.Named.
		return ""
	}
	return ""
}

// isMethodOf reports whether f is the named method on the named
// receiver type declared in a package whose import path ends with the
// given final segment ("netem" matches both ptperf/internal/netem and
// the analysistest sandbox/netem stub).
func isMethodOf(f *types.Func, pkgSegment, recv, name string) bool {
	if f == nil || f.Name() != name || f.Pkg() == nil {
		return false
	}
	if lastSegment(f.Pkg().Path()) != pkgSegment {
		return false
	}
	return recvTypeName(f) == recv
}
