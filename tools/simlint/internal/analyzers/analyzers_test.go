package analyzers_test

import (
	"testing"

	"ptperf/tools/simlint/internal/analyzers"
	"ptperf/tools/simlint/internal/lint/linttest"
)

// TestSandbox runs the full analyzer suite over the testdata sandbox
// module: each package holds the positive, negative and
// allow-directive cases for one analyzer, with expectations inline as
// `// want` comments.
func TestSandbox(t *testing.T) {
	linttest.Run(t, "testdata/sandbox", analyzers.All(), "./...")
}
