package analyzers

import (
	"go/ast"

	"ptperf/tools/simlint/internal/lint"
)

// SeededRand forbids the top-level math/rand (and math/rand/v2)
// functions module-wide: they draw from a process-global, unseeded (or
// racily shared) source, so two same-seed campaigns — or the two halves
// of a -jobs equivalence pair — would diverge. Randomness must flow
// from *rand.Rand instances built on seeded sources (rand.New(
// rand.NewSource(seed)), sim.DeriveSeed streams). Constructors
// (rand.New, rand.NewSource, rand.NewZipf, v2's NewPCG/NewChaCha8) are
// legal; every draw function on the package itself is not.
var SeededRand = &lint.Analyzer{
	Name: "seededrand",
	Doc: "forbid top-level math/rand draws (rand.Intn, rand.Int63, ...); " +
		"randomness only flows from seeded *rand.Rand instances",
	Run: runSeededRand,
}

// seededRandAllowed are the package-level functions of math/rand and
// math/rand/v2 that construct rather than draw.
var seededRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes an explicit *Rand
	"NewPCG":     true, // math/rand/v2 seeded source
	"NewChaCha8": true, // math/rand/v2 seeded source
}

func runSeededRand(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			// Methods on *rand.Rand / *rand.Zipf are the seeded surface.
			if recvTypeName(fn) != "" || seededRandAllowed[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"top-level rand.%s draws from the unseeded global source; use a *rand.Rand from a seeded source (rand.New(rand.NewSource(seed)))",
				fn.Name())
			return true
		})
	}
	return nil
}
