// Package load type-checks Go packages for simlint without
// golang.org/x/tools: it shells out to `go list -export -deps -json`
// for the build graph and compiled export data, parses the target
// packages' sources, and type-checks them with the standard library's
// gc importer reading those export files. This is the loader behind
// simlint's standalone mode and the analysistest harness; the
// `go vet -vettool` path gets the same inputs from vet.cfg instead.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listPkg mirrors the subset of `go list -json` output the loader
// needs.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	ForTest    string
	GoFiles    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load lists, parses and type-checks the packages matching patterns in
// dir. With tests true, test variants (in-package and external _test
// packages) are included, mirroring what `go vet` analyzes.
func Load(dir string, tests bool, patterns ...string) ([]*Package, error) {
	args := []string{"list", "-export", "-deps", "-json"}
	if tests {
		args = append(args, "-test")
	}
	args = append(args, "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// GOWORK=off: testdata sandbox modules must resolve against their
	// own go.mod, not any workspace of the enclosing checkout.
	cmd.Env = append(os.Environ(), "GOWORK=off")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}

	exports := map[string]string{}
	var targets []*listPkg
	dec := json.NewDecoder(&out)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard || p.Name == "" || len(p.GoFiles) == 0 {
			continue
		}
		// Skip synthesized test-main packages (pkg.test): their only
		// source is a generated _testmain.go in the build cache.
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		targets = append(targets, p)
	}

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := typecheck(t, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func typecheck(p *listPkg, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := p.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tpkg, info, err := Check(p.ImportPath, fset, files, lookup)
	if err != nil {
		return nil, fmt.Errorf("%s: typecheck: %v", p.ImportPath, err)
	}
	return &Package{ImportPath: p.ImportPath, Fset: fset, Files: files, Pkg: tpkg, Info: info}, nil
}

// Check type-checks one package's parsed files against export data
// served by lookup. It is shared with the vet.cfg driver, whose lookup
// reads the PackageFile/ImportMap tables from the vet config instead of
// go list output.
func Check(importPath string, fset *token.FileSet, files []*ast.File, lookup func(string) (io.ReadCloser, error)) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
