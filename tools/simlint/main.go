// Command simlint is the static guardian of the simulator's
// determinism and inline-event contracts (DESIGN.md "Static enforcement
// of the determinism contract"). It bundles five analyzers:
//
//	wallclock      no time.Now/Sleep/After/Since/... anywhere in the module
//	seededrand     no top-level math/rand draws; only seeded *rand.Rand
//	noparkinevent  Clock.EventAt arms / Conn.SetReadSink sinks never reach
//	               a parking primitive (the PR-9 inline-event contract)
//	rawgo          simulation packages spawn goroutines via Clock.Go only
//	maprange       report/render/digest code never iterates maps unsorted
//
// The only escape hatch is //simlint:allow <analyzer> -- <reason>, with
// the reason mandatory; noparkinevent cannot be suppressed inside
// internal/netem or internal/tor at all.
//
// It runs two ways:
//
//	go vet -vettool=$(pwd)/bin/simlint ./...   # CI; covers test files
//	go run ./tools/simlint ./...               # standalone audit
//
// As a vettool it implements the go vet driver protocol (-V=full,
// -flags, and per-package vet.cfg invocations) against the standard
// library only; see vetcfg.go.
package main

import (
	"fmt"
	"os"
	"strings"

	"ptperf/tools/simlint/internal/analyzers"
	"ptperf/tools/simlint/internal/lint"
	"ptperf/tools/simlint/internal/load"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) > 0 {
		switch {
		case args[0] == "-V=full" || args[0] == "-V":
			// go vet identifies the tool (and keys its action cache) by
			// this line; the executable hash invalidates it on rebuild.
			printVersion()
			return 0
		case args[0] == "-flags":
			// go vet queries the tool's flag set to parse its own
			// command line. simlint takes no analyzer flags.
			fmt.Println("[]")
			return 0
		case args[0] == "-h" || args[0] == "-help" || args[0] == "--help":
			usage()
			return 0
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVetCfg(args[0])
	}
	return runStandalone(args)
}

func usage() {
	fmt.Fprintf(os.Stderr, `simlint: static enforcement of the simulator's determinism contracts

usage:
  go vet -vettool=/abs/path/to/simlint ./...    (preferred; includes test files)
  simlint [-tests] [packages]                   (standalone audit)

analyzers:
`)
	for _, a := range analyzers.All() {
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nescape hatch: //simlint:allow <analyzer> -- <reason>   (reason mandatory)\n")
}

// runStandalone loads packages itself (go list -export) and analyzes
// them — the developer-facing audit mode.
func runStandalone(args []string) int {
	tests := false
	var patterns []string
	for _, a := range args {
		if a == "-tests" {
			tests = true
			continue
		}
		if strings.HasPrefix(a, "-") {
			fmt.Fprintf(os.Stderr, "simlint: unknown flag %s\n", a)
			usage()
			return 2
		}
		patterns = append(patterns, a)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(".", tests, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 1
	}
	found := 0
	for _, p := range pkgs {
		diags, err := lint.RunPackage(p.Fset, p.Files, p.Pkg, p.Info, analyzers.All())
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %s: %v\n", p.ImportPath, err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
			found++
		}
	}
	if found > 0 {
		return 2
	}
	return 0
}
