package main

// The go vet driver protocol, reimplemented from the standard library
// (golang.org/x/tools/go/analysis/unitchecker is not vendorable in this
// offline build). `go vet -vettool=simlint` invokes the tool three
// ways:
//
//  1. `simlint -V=full` — print "<name> version <id>" so the go command
//     can key its action cache on the tool's identity (handled in
//     main.go; the id hashes the executable, so rebuilding simlint
//     invalidates cached vet results).
//  2. `simlint -flags` — print a JSON description of the tool's flags
//     (simlint has none; handled in main.go).
//  3. `simlint <dir>/vet.cfg` — analyze one package. The config names
//     the package's sources, the export-data file of every dependency
//     (PackageFile, via ImportMap for vendor/test-variant renames), and
//     a facts output path (VetxOutput) that must exist afterwards even
//     though simlint keeps no cross-package facts. Diagnostics go to
//     stderr; exit status 2 means findings, 0 clean.
//
// Packages analyzed only for facts (dependencies) arrive with VetxOnly
// set and are skipped entirely — simlint's rules are module-local.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"

	"ptperf/tools/simlint/internal/analyzers"
	"ptperf/tools/simlint/internal/lint"
	"ptperf/tools/simlint/internal/load"
)

// vetConfig mirrors cmd/go's vet config JSON (the same shape
// unitchecker.Config decodes).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVetCfg(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "simlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command requires the facts file to exist after every run,
	// including fact-only dependency passes. simlint keeps no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: writing vetx: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg, info, err := load.Check(cfg.ImportPath, fset, files, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "simlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags, err := lint.RunPackage(fset, files, pkg, info, analyzers.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// printVersion implements the -V=full handshake: the output's third
// field hashes the executable, so the go command re-vets when the tool
// changes (mirroring unitchecker's versionFlag).
func printVersion() {
	prog, err := os.Executable()
	if err != nil {
		prog = os.Args[0]
	}
	h := sha256.New()
	if f, err := os.Open(prog); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel simlint buildID=%x\n",
		filepath.Base(prog), h.Sum(nil)[:16])
}
