// Package harness carries exactly one seeded violation of each simlint
// class; the integration test proves the vettool catches every one of
// them and exits nonzero. The "harness" segment makes this both a
// simulation package (rawgo) and a render package (maprange).
package harness

import (
	"math/rand"
	"time"

	"scratch/netem"
)

type state struct {
	clock *netem.Clock
	mu    netem.Mutex
}

// wallclockViolation reads the wall clock.
func wallclockViolation() time.Time {
	return time.Now()
}

// seededrandViolation draws from the global source.
func seededrandViolation() int {
	return rand.Intn(10)
}

// rawgoViolation spawns an unregistered goroutine in a simulation
// package.
func rawgoViolation() {
	go func() {}()
}

// maprangeViolation iterates a map unsorted in a render package.
func maprangeViolation(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// noparkViolation arms an event callback that parks.
func noparkViolation(s *state) {
	s.clock.EventAt(0, func() {
		s.mu.Lock()
	})
}
