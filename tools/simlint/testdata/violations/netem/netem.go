// Package netem is the minimal scheduler stub the seeded violations
// need: the analyzers match primitives by path segment, receiver and
// method name.
package netem

import "time"

type Clock struct{}

func (c *Clock) EventAt(vt time.Duration, fn func()) {}
func (c *Clock) Go(fn func())                        {}

type Mutex struct{}

func (m *Mutex) Lock()         {}
func (m *Mutex) TryLock() bool { return true }
func (m *Mutex) Unlock()       {}
