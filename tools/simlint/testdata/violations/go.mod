module scratch

go 1.22
