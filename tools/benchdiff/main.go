// Command benchdiff compares a CI benchmark run (BENCH_results.json)
// against the committed BENCH_baseline.json and fails on ns/op
// regressions.
//
// Both files hold one {"BenchmarkName": ns_per_op} object, as rendered
// by the CI workflow's awk step. Because baseline and result often come
// from different hardware, raw ratios are meaningless on their own:
// benchdiff computes each benchmark's result/baseline ratio, takes the
// MINIMUM ratio as the machine-speed factor (the least-slowed benchmark
// bounds how much of the slowdown is hardware), and flags benchmarks
// whose ratio exceeds that floor by more than -threshold. Unlike a
// median, the minimum still catches a regression that hits most of the
// suite at once — only a perfectly uniform slowdown across every
// benchmark is indistinguishable from slower hardware, which no
// relative scheme can separate without pinned runners. The flip side:
// a genuine single-benchmark improvement lowers the floor and flags
// the rest, so a PR that speeds a benchmark up must regenerate
// BENCH_baseline.json in the same change (false red, self-correcting —
// preferred over the false green a median gives broad slowdowns).
//
// BenchmarkSweepParallel is excluded from both the floor and the gate:
// its ns/op scales with the runner's core count by design, so its
// ratio says nothing about code regressions. Its regression detection
// is the speedup assertion below, computed entirely within one run.
//
// With -min-sweep-speedup N it additionally asserts the shard
// executor's win: BenchmarkScenarioSweep (sequential, -jobs 1) must be
// at least N times the ns/op of BenchmarkSweepParallel (all cores) in
// the results file. CI passes this only on runners with enough cores.
//
// With -allocs-baseline/-allocs-results (from a -benchmem run) it also
// gates allocs/op. That gate is a direct per-benchmark ratio against
// 1 + -allocs-threshold, with no minimum-ratio normalization:
// allocation counts do not depend on runner speed, so the hardware
// factor that motivates the ns/op floor does not exist, and a uniform
// allocs blow-up — invisible to a relative scheme — is exactly what the
// gate must catch. The default 35% headroom absorbs sync.Pool refills
// after GC, the one nondeterministic allocs source in the suite.
//
// With -append-history FILE it also appends the results as one
// {"label": ..., "ns": {...}} line to the JSONL perf-history file —
// the format internal/obs.ParseBenchHistory reads to render the HTML
// report's perf-trajectory section. -history-label names the entry
// (CI passes the commit SHA). Passing -baseline "" skips the gate and
// only appends.
//
// Usage:
//
//	go run ./tools/benchdiff -baseline BENCH_baseline.json -results BENCH_results.json -threshold 0.25
//	go run ./tools/benchdiff -baseline "" -results BENCH_results.json -append-history BENCH_history.jsonl -history-label $SHA
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "committed baseline {name: ns/op}")
		resultsPath  = flag.String("results", "BENCH_results.json", "fresh results {name: ns/op}")
		threshold    = flag.Float64("threshold", 0.25, "max allowed slowdown relative to the suite's minimum-ratio floor")
		minSpeedup   = flag.Float64("min-sweep-speedup", 0, "if > 0, require ScenarioSweep/SweepParallel >= this in results")
		historyPath  = flag.String("append-history", "", "append the results as one {label, ns} line to this JSONL perf-history file")
		historyLabel = flag.String("history-label", "", "label for the appended history entry (e.g. the commit SHA)")

		allocsBaseline  = flag.String("allocs-baseline", "", "committed allocs/op baseline {name: allocs/op}; empty disables the allocs gate")
		allocsResults   = flag.String("allocs-results", "", "fresh allocs/op results (from -benchmem), required with -allocs-baseline")
		allocsThreshold = flag.Float64("allocs-threshold", 0.35, "max allowed allocs/op growth per benchmark (direct ratio, no hardware normalization)")
	)
	flag.Parse()

	res, err := readNsOp(*resultsPath)
	if err != nil {
		fatalf("%v", err)
	}
	if *historyPath != "" {
		if err := appendHistory(*historyPath, *historyLabel, res); err != nil {
			fatalf("append history: %v", err)
		}
		fmt.Printf("appended %d benchmarks to %s\n", len(res), *historyPath)
	}
	if *baselinePath == "" {
		// History-only invocation: nothing to gate against.
		return
	}
	base, err := readNsOp(*baselinePath)
	if err != nil {
		fatalf("%v", err)
	}

	cmp, err := compare(base, res, *threshold)
	if err != nil {
		fatalf("%s vs %s: %v", *baselinePath, *resultsPath, err)
	}
	fmt.Print(cmp.render())
	failed := cmp.failed

	if *allocsBaseline != "" {
		if *allocsResults == "" {
			fatalf("-allocs-baseline set without -allocs-results")
		}
		abase, err := readNsOp(*allocsBaseline)
		if err != nil {
			fatalf("%v", err)
		}
		ares, err := readNsOp(*allocsResults)
		if err != nil {
			fatalf("%v", err)
		}
		acmp, err := compareAllocs(abase, ares, *allocsThreshold)
		if err != nil {
			fatalf("%s vs %s: %v", *allocsBaseline, *allocsResults, err)
		}
		fmt.Print("\n" + acmp.render())
		failed = failed || acmp.failed
	}

	speedup, present, speedupFailed := sweepSpeedup(res, *minSpeedup)
	if present {
		fmt.Printf("\nsweep parallel speedup (%s / %s): %.2fx\n", seqName, parName, speedup)
	}
	if speedupFailed {
		if !present {
			fmt.Printf("FAIL: -min-sweep-speedup set but %s/%s missing from results\n", seqName, parName)
		} else {
			fmt.Printf("FAIL: sweep speedup %.2fx below required %.2fx\n", speedup, *minSpeedup)
		}
		failed = true
	}

	if failed {
		os.Exit(1)
	}
	fmt.Printf("\nno regressions beyond %.0f%% of the suite's minimum-ratio floor\n", *threshold*100)
}

func readNsOp(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}
