package main

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the testable core of benchdiff: pure functions from the
// two {benchmark: ns/op} maps to a verdict, with all I/O left to main.

// seqName/parName are the sweep benchmark pair: parName is excluded
// from the ratio gate (ns/op scales with core count) and instead gated
// by -min-sweep-speedup against seqName from the same run.
const seqName, parName = "BenchmarkScenarioSweep", "BenchmarkSweepParallel"

// row is one benchmark's comparison.
type row struct {
	name       string
	base, res  float64
	ratio      float64
	normalized float64
	regressed  bool
}

// compareResult is the ratio gate's full verdict.
type compareResult struct {
	// floor is the machine-speed factor: the minimum result/baseline
	// ratio across the gated benchmarks.
	floor float64
	// rows lists every gated benchmark, sorted by name.
	rows []row
	// failed reports whether any row regressed beyond the threshold.
	failed bool
}

// compare runs the min-ratio-normalized regression gate: each
// benchmark's result/baseline ratio is divided by the suite's minimum
// ratio (the least-slowed benchmark bounds how much of a slowdown is
// hardware), and rows exceeding 1+threshold are flagged. parName is
// excluded (core-count-dependent by design); benchmarks missing from
// either side are skipped (dropped or new benchmarks are not
// regressions).
func compare(base, res map[string]float64, threshold float64) (compareResult, error) {
	var out compareResult
	//simlint:allow maprange -- rows are sorted by name immediately below; map order cannot reach the report.
	for name, b := range base {
		if name == parName {
			continue
		}
		r, ok := res[name]
		if !ok || b <= 0 {
			continue
		}
		out.rows = append(out.rows, row{name: name, base: b, res: r, ratio: r / b})
	}
	if len(out.rows) == 0 {
		return out, fmt.Errorf("no benchmarks in common")
	}
	sort.Slice(out.rows, func(i, j int) bool { return out.rows[i].name < out.rows[j].name })

	out.floor = out.rows[0].ratio
	for _, r := range out.rows[1:] {
		if r.ratio < out.floor {
			out.floor = r.ratio
		}
	}
	if out.floor <= 0 {
		return out, fmt.Errorf("non-positive ratio floor %.3f", out.floor)
	}
	for i := range out.rows {
		out.rows[i].normalized = out.rows[i].ratio / out.floor
		if out.rows[i].normalized > 1+threshold {
			out.rows[i].regressed = true
			out.failed = true
		}
	}
	return out, nil
}

// render formats the gate's table.
func (c compareResult) render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine-speed factor (minimum result/baseline ratio): %.3f\n", c.floor)
	fmt.Fprintf(&b, "%-40s %14s %14s %8s %10s\n", "benchmark", "baseline ns/op", "result ns/op", "ratio", "vs floor")
	for _, r := range c.rows {
		verdict := "ok"
		if r.regressed {
			verdict = "REGRESSION"
		}
		fmt.Fprintf(&b, "%-40s %14.0f %14.0f %8.3f %9.3fx %s\n",
			r.name, r.base, r.res, r.ratio, r.normalized, verdict)
	}
	return b.String()
}

// allocRow is one benchmark's allocs/op comparison.
type allocRow struct {
	name      string
	base, res float64
	ratio     float64
	regressed bool
}

// allocResult is the allocs/op gate's verdict.
type allocResult struct {
	rows   []allocRow
	failed bool
}

// compareAllocs runs the allocs/op regression gate. Unlike the ns/op
// gate there is no machine-speed normalization: allocation counts do
// not depend on runner hardware, so each benchmark's result/baseline
// ratio gates directly against 1+threshold. The threshold absorbs the
// residual nondeterminism that does exist (GC emptying a sync.Pool
// forces reallocation, so allocs/op jitters a few percent run to run).
// parName is gated too — its allocation count, unlike its ns/op, does
// not scale with core count. Benchmarks missing from either side are
// skipped.
func compareAllocs(base, res map[string]float64, threshold float64) (allocResult, error) {
	var out allocResult
	//simlint:allow maprange -- rows are sorted by name immediately below; map order cannot reach the report.
	for name, b := range base {
		r, ok := res[name]
		if !ok || b <= 0 {
			continue
		}
		out.rows = append(out.rows, allocRow{name: name, base: b, res: r, ratio: r / b})
	}
	if len(out.rows) == 0 {
		return out, fmt.Errorf("no benchmarks in common")
	}
	sort.Slice(out.rows, func(i, j int) bool { return out.rows[i].name < out.rows[j].name })
	for i := range out.rows {
		if out.rows[i].ratio > 1+threshold {
			out.rows[i].regressed = true
			out.failed = true
		}
	}
	return out, nil
}

// render formats the allocs gate's table.
func (c allocResult) render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %14s %14s %8s\n", "benchmark", "base allocs/op", "res allocs/op", "ratio")
	for _, r := range c.rows {
		verdict := "ok"
		if r.regressed {
			verdict = "REGRESSION"
		}
		fmt.Fprintf(&b, "%-40s %14.0f %14.0f %8.3f %s\n", r.name, r.base, r.res, r.ratio, verdict)
	}
	return b.String()
}

// sweepSpeedup evaluates the same-run shard-executor assertion:
// seqName's ns/op over parName's must reach minSpeedup. With minSpeedup
// <= 0 the check is disabled (ok, no failure). Both benchmarks missing
// or non-positive while the check is enabled is a failure — a silently
// skipped gate reads as green.
func sweepSpeedup(res map[string]float64, minSpeedup float64) (speedup float64, present bool, failed bool) {
	seq, par := res[seqName], res[parName]
	present = seq > 0 && par > 0
	if present {
		speedup = seq / par
	}
	if minSpeedup <= 0 {
		return speedup, present, false
	}
	if !present {
		return 0, false, true
	}
	return speedup, true, speedup < minSpeedup
}
