package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// historyEntry mirrors internal/obs.HistoryEntry: one benchmark run in
// the committed perf-history JSONL file the HTML report renders as the
// perf trajectory. benchdiff appends, obs.ParseBenchHistory reads; the
// two must agree on this wire shape.
type historyEntry struct {
	Label string             `json:"label"`
	NS    map[string]float64 `json:"ns"`
}

// appendHistory appends one {"label","ns"} line to the JSONL history
// file at path, creating the file if needed. Appending is the only
// mutation — prior entries are never rewritten, so the file is a
// monotone log suitable for committing.
func appendHistory(path, label string, ns map[string]float64) error {
	b, err := json.Marshal(historyEntry{Label: label, NS: ns})
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(f, "%s\n", b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
