package main

import (
	"os"
	"path/filepath"
	"testing"

	"ptperf/internal/obs"
)

// TestAppendHistoryRoundTrip appends two runs and reads them back
// through the same parser the HTML report uses — the wire format is a
// cross-package contract, so the test goes through obs, not a local
// decoder.
func TestAppendHistoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.jsonl")
	if err := appendHistory(path, "r1", map[string]float64{"BenchmarkA": 100, "BenchmarkB": 30}); err != nil {
		t.Fatalf("first append: %v", err)
	}
	if err := appendHistory(path, "r2", map[string]float64{"BenchmarkA": 90}); err != nil {
		t.Fatalf("second append: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got := obs.ParseBenchHistory(f)
	if len(got) != 2 {
		t.Fatalf("parsed %d entries, want 2: %+v", len(got), got)
	}
	if got[0].Label != "r1" || got[0].NS["BenchmarkB"] != 30 {
		t.Errorf("first entry = %+v", got[0])
	}
	if got[1].Label != "r2" || got[1].NS["BenchmarkA"] != 90 {
		t.Errorf("second entry = %+v", got[1])
	}
}

// TestAppendHistoryPreservesPriorLines: appending must never rewrite
// existing entries, even hand-edited ones.
func TestAppendHistoryPreservesPriorLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.jsonl")
	seed := `{"label":"seed","ns":{"BenchmarkA":123}}` + "\n"
	if err := os.WriteFile(path, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := appendHistory(path, "next", map[string]float64{"BenchmarkA": 110}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:len(seed)]) != seed {
		t.Fatalf("prior line rewritten:\n%s", data)
	}
}
