package main

import (
	"math"
	"testing"
)

func names(c compareResult) map[string]row {
	out := make(map[string]row, len(c.rows))
	for _, r := range c.rows {
		out[r.name] = r
	}
	return out
}

// TestUniformSlowdownIsHardware pins the min-ratio normalization: a
// suite uniformly 2x slower reads as a slower machine, not as
// regressions.
func TestUniformSlowdownIsHardware(t *testing.T) {
	base := map[string]float64{"BenchmarkA": 100, "BenchmarkB": 2000, "BenchmarkC": 30}
	res := map[string]float64{"BenchmarkA": 200, "BenchmarkB": 4000, "BenchmarkC": 60}
	c, err := compare(base, res, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if c.failed {
		t.Fatalf("uniform 2x slowdown flagged as regression: %+v", c.rows)
	}
	if math.Abs(c.floor-2) > 1e-9 {
		t.Errorf("floor = %.3f, want 2.0", c.floor)
	}
	for _, r := range c.rows {
		if math.Abs(r.normalized-1) > 1e-9 {
			t.Errorf("%s normalized = %.3f, want 1.0", r.name, r.normalized)
		}
	}
}

// TestSingleRegressionGates: one benchmark 30% over the floor fails the
// 25% gate, the rest stay ok.
func TestSingleRegressionGates(t *testing.T) {
	base := map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100, "BenchmarkC": 100}
	res := map[string]float64{"BenchmarkA": 100, "BenchmarkB": 130, "BenchmarkC": 110}
	c, err := compare(base, res, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !c.failed {
		t.Fatal("30% single-benchmark regression passed the 25% gate")
	}
	rows := names(c)
	if !rows["BenchmarkB"].regressed {
		t.Error("BenchmarkB not flagged")
	}
	if rows["BenchmarkA"].regressed || rows["BenchmarkC"].regressed {
		t.Errorf("within-threshold benchmarks flagged: %+v", rows)
	}
}

// TestBoundaryNotFlagged: exactly threshold over the floor is allowed
// (the gate is strictly greater-than).
func TestBoundaryNotFlagged(t *testing.T) {
	base := map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100}
	res := map[string]float64{"BenchmarkA": 100, "BenchmarkB": 125}
	c, err := compare(base, res, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if c.failed {
		t.Fatalf("exact-threshold ratio flagged: %+v", c.rows)
	}
}

// TestSweepParallelExcluded: parName influences neither the floor nor
// the gate, however wild its ratio.
func TestSweepParallelExcluded(t *testing.T) {
	base := map[string]float64{"BenchmarkA": 100, parName: 100}
	res := map[string]float64{"BenchmarkA": 100, parName: 5000}
	c, err := compare(base, res, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if c.failed {
		t.Fatal("SweepParallel ratio leaked into the gate")
	}
	if _, ok := names(c)[parName]; ok {
		t.Fatal("SweepParallel present in gated rows")
	}
	// And its tiny ratio must not become the floor either (which would
	// flag everything else).
	res2 := map[string]float64{"BenchmarkA": 100, parName: 10}
	c2, err := compare(base, res2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if c2.failed || c2.floor != 1 {
		t.Fatalf("SweepParallel improvement moved the floor: floor=%.3f failed=%v", c2.floor, c2.failed)
	}
}

// TestContentionSweepGated: the contention benchmark pins its Jobs to 1
// (core-count-independent ns/op), so it takes no SweepParallel-style
// exclusion — a regression there must fail the ratio gate like any
// other benchmark.
func TestContentionSweepGated(t *testing.T) {
	base := map[string]float64{"BenchmarkA": 100, "BenchmarkContentionSweep": 100}
	res := map[string]float64{"BenchmarkA": 100, "BenchmarkContentionSweep": 200}
	c, err := compare(base, res, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !c.failed || !names(c)["BenchmarkContentionSweep"].regressed {
		t.Fatalf("ContentionSweep regression slipped past the gate: %+v", c.rows)
	}
}

// TestDroppedAndNewBenchmarksSkipped: benchmarks on one side only are
// not regressions.
func TestDroppedAndNewBenchmarksSkipped(t *testing.T) {
	base := map[string]float64{"BenchmarkA": 100, "BenchmarkDropped": 100}
	res := map[string]float64{"BenchmarkA": 100, "BenchmarkNew": 1e9}
	c, err := compare(base, res, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.rows) != 1 || c.rows[0].name != "BenchmarkA" || c.failed {
		t.Fatalf("rows = %+v failed=%v, want only BenchmarkA ok", c.rows, c.failed)
	}
	if _, err := compare(map[string]float64{"BenchmarkX": 1}, map[string]float64{"BenchmarkY": 1}, 0.25); err == nil {
		t.Fatal("disjoint suites must error, not pass")
	}
}

// TestAllocsUniformGrowthGates pins the difference from the ns/op gate:
// allocs/op has no hardware factor, so a uniform 2x allocation growth is
// a regression everywhere, not a slower machine.
func TestAllocsUniformGrowthGates(t *testing.T) {
	base := map[string]float64{"BenchmarkA": 1000, "BenchmarkB": 500}
	res := map[string]float64{"BenchmarkA": 2000, "BenchmarkB": 1000}
	c, err := compareAllocs(base, res, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	if !c.failed {
		t.Fatal("uniform 2x allocs growth passed the gate")
	}
	for _, r := range c.rows {
		if !r.regressed {
			t.Errorf("%s not flagged", r.name)
		}
	}
}

// TestAllocsWithinHeadroom: pool-refill jitter under the threshold
// passes, and SweepParallel is gated like any other benchmark (its
// allocation count does not scale with cores).
func TestAllocsWithinHeadroom(t *testing.T) {
	base := map[string]float64{"BenchmarkA": 1000, parName: 1000}
	res := map[string]float64{"BenchmarkA": 1200, parName: 1300}
	c, err := compareAllocs(base, res, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	if c.failed {
		t.Fatalf("within-threshold allocs jitter flagged: %+v", c.rows)
	}
	res[parName] = 2000
	c, err = compareAllocs(base, res, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	if !c.failed {
		t.Fatal("SweepParallel allocs regression slipped past the gate")
	}
}

// TestSweepSpeedupAssertion covers the same-run shard-executor gate.
func TestSweepSpeedupAssertion(t *testing.T) {
	res := map[string]float64{seqName: 1000, parName: 250}
	if s, present, failed := sweepSpeedup(res, 2.5); failed || !present || math.Abs(s-4) > 1e-9 {
		t.Errorf("4x speedup: s=%.2f present=%v failed=%v", s, present, failed)
	}
	if _, _, failed := sweepSpeedup(res, 5); !failed {
		t.Error("4x speedup passed a 5x requirement")
	}
	// Disabled check never fails, even with benchmarks missing.
	if _, _, failed := sweepSpeedup(map[string]float64{}, 0); failed {
		t.Error("disabled speedup check failed")
	}
	// Enabled check with the pair missing must fail loudly.
	if _, present, failed := sweepSpeedup(map[string]float64{seqName: 1000}, 2.5); !failed || present {
		t.Error("missing SweepParallel slipped past an enabled speedup gate")
	}
}
