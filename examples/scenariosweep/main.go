// Scenariosweep: run the same website accesses for two transports under
// three censor scenarios — clean, a mid-run bandwidth throttle, and an
// endpoint block — and print how each transport's access time and
// reliability respond. This is the censor subsystem (internal/censor)
// driven directly through testbed.Options.Scenario; `ptperf -exp sweep`
// runs the full {transports} × {scenarios} matrix with statistics.
package main

import (
	"fmt"
	"log"

	"ptperf/internal/censor"
	"ptperf/internal/fetch"
	"ptperf/internal/testbed"
)

func main() {
	transports := []string{"tor", "obfs4"}
	for _, scenario := range []string{"clean", "throttle-surge", "bridge-block"} {
		sc, err := censor.Lookup(scenario)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== scenario %q — %s ===\n", sc.Name, sc.Description)

		// Same seed for every scenario: topology, catalogs and relay
		// draws are identical, so differences are the interference.
		world, err := testbed.New(testbed.Options{
			Seed:      7,
			ByteScale: 0.125,
			TrancoN:   6, CBLN: 6,
			Scenario: scenario,
		})
		if err != nil {
			log.Fatal(err)
		}

		for _, method := range transports {
			dep, err := world.Deployment(method)
			if err != nil {
				log.Fatal(err)
			}
			// Under blocking, the preheat itself may fail; accesses
			// then record the failure.
			_ = dep.Preheat()
			client := &fetch.Client{Net: world.Net, Dial: dep.Dial}
			ok, failed := 0, 0
			var total float64
			for _, site := range world.Tranco.Sites {
				res := client.Get(world.Origin.Addr(), site.Path, false)
				if res.Complete() {
					ok++
					total += res.Total.Seconds()
				} else {
					failed++
				}
			}
			mean := 0.0
			if ok > 0 {
				mean = total / float64(ok)
			}
			fmt.Printf("  %-6s %d ok, %d failed, mean access %.2fs (virtual)\n",
				method, ok, failed, mean)
		}
		if world.Censor != nil {
			st := world.Censor.Stats()
			fmt.Printf("  censor: blocked-dials=%d flows-cut=%d throttled-segments=%d\n\n",
				st.BlockedDials, st.FlowsCut, st.ThrottledSegments)
		}
	}
	fmt.Println("The throttle slows every access; the block kills obfs4's pinned")
	fmt.Println("bridge while vanilla Tor fails over to an unblocked guard.")
}
