// Website-access comparison: a miniature Figure 2a. Measures curl-style
// access time for several transports across a small site sample and
// prints per-method summaries, reproducing the paper's ordering
// (fully-encrypted/proxy-layer fast, mimicry/tunneling constrained,
// marionette slowest).
package main

import (
	"fmt"
	"log"

	"ptperf/internal/fetch"
	"ptperf/internal/stats"
	"ptperf/internal/testbed"
)

func main() {
	world, err := testbed.New(testbed.Options{
		Seed:      11,
		ByteScale: 0.125,
		TrancoN:   6, CBLN: 6,
	})
	if err != nil {
		log.Fatal(err)
	}

	methods := []string{"tor", "obfs4", "webtunnel", "cloak", "dnstt", "camoufler", "marionette"}
	fmt.Printf("%-11s %8s %8s %8s\n", "method", "median", "mean", "max")
	for _, method := range methods {
		dep, err := world.Deployment(method)
		if err != nil {
			log.Fatal(err)
		}
		if err := dep.Preheat(); err != nil {
			log.Fatal(err)
		}
		client := &fetch.Client{Net: world.Net, Dial: dep.Dial}
		var xs []float64
		for _, site := range world.Tranco.Sites {
			res := client.Get(world.Origin.Addr(), site.Path, false)
			xs = append(xs, res.Total.Seconds())
		}
		for _, site := range world.CBL.Sites {
			res := client.Get(world.Origin.Addr(), site.Path, false)
			xs = append(xs, res.Total.Seconds())
		}
		b := stats.Summarize(xs)
		fmt.Printf("%-11s %7.2fs %7.2fs %7.2fs\n", method, b.Median, b.Mean, b.Max)
	}
	fmt.Println("\nExpected shape (paper §4.2): obfs4/webtunnel/cloak near vanilla Tor;")
	fmt.Println("dnstt limited by DNS response sizes; camoufler by IM rate limits;")
	fmt.Println("marionette slowest (automaton-paced cover traffic).")
}
