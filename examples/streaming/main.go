// Streaming demo: the paper's future-work use case (§A.4). Emulates an
// audio stream as a sequence of fixed-bitrate segment fetches with a
// playout deadline, and counts rebuffering events per transport. PTs
// whose carrier protocol caps throughput or adds per-message latency
// (dnstt, camoufler) rebuffer; obfs4 plays smoothly.
package main

import (
	"fmt"
	"log"
	"time"

	"ptperf/internal/fetch"
	"ptperf/internal/testbed"
)

const (
	segmentSeconds = 4  // media seconds per segment
	segments       = 12 // ~48 s of audio
	bitrateKBps    = 16 // 128 kbit/s audio
)

func main() {
	world, err := testbed.New(testbed.Options{
		Seed:      23,
		ByteScale: 1, // the stream is small; no need to scale it
		TrancoN:   2, CBLN: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	segmentBytes := bitrateKBps * 1024 * segmentSeconds

	for _, method := range []string{"obfs4", "dnstt", "camoufler"} {
		dep, err := world.Deployment(method)
		if err != nil {
			log.Fatal(err)
		}
		if err := dep.Preheat(); err != nil {
			log.Fatal(err)
		}
		client := &fetch.Client{Net: world.Net, Dial: dep.Dial, Timeout: 120 * time.Second}

		// Playout: each segment must arrive within segmentSeconds once
		// playback has started (after a 2-segment startup buffer).
		var rebuffers int
		var worst time.Duration
		start := world.Net.Now()
		for i := 0; i < segments; i++ {
			res := client.DownloadFile(world.Origin.Addr(), segmentBytes)
			if !res.Complete() {
				rebuffers++
				continue
			}
			if res.Total > segmentSeconds*time.Second {
				rebuffers++
			}
			if res.Total > worst {
				worst = res.Total
			}
		}
		total := world.Net.Since(start)
		fmt.Printf("%-10s streamed %2d segments in %6.1fs  worst-segment %5.2fs  rebuffers %d\n",
			method, segments, total.Seconds(), worst.Seconds(), rebuffers)
	}
	fmt.Println("\nA segment is 4 s of 128 kbit/s audio; fetching one slower than")
	fmt.Println("real time forces a rebuffer. Carrier-protocol caps dominate (§4.2).")
}
