// Quickstart: build a small simulated world, bring up the obfs4
// transport in its paper configuration (bridge doubling as guard), and
// fetch one website through PT+Tor, printing curl-style timings.
package main

import (
	"fmt"
	"log"

	"ptperf/internal/fetch"
	"ptperf/internal/testbed"
)

func main() {
	// A deterministic world: relay fleet, web origin, client machine.
	world, err := testbed.New(testbed.Options{
		Seed:      7,
		ByteScale: 0.125,
		TrancoN:   5, CBLN: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Deploy obfs4 per integration set 1 and a vanilla-Tor comparator.
	for _, method := range []string{"tor", "obfs4"} {
		dep, err := world.Deployment(method)
		if err != nil {
			log.Fatal(err)
		}
		if err := dep.Preheat(); err != nil {
			log.Fatal(err)
		}
		client := &fetch.Client{Net: world.Net, Dial: dep.Dial}
		site := world.Tranco.Sites[0]
		res := client.Get(world.Origin.Addr(), site.Path, false)
		if !res.Complete() {
			log.Fatalf("%s: fetch failed: %v", method, res.Err)
		}
		fmt.Printf("%-6s fetched %s (%d bytes): TTFB %.2fs, total %.2fs\n",
			method, site.Path, res.BytesGot, res.TTFB.Seconds(), res.Total.Seconds())
	}
	fmt.Println("\nBoth paths traverse a full 3-hop onion circuit; obfs4 adds its")
	fmt.Println("handshake and record framing but uses a less-utilized bridge as guard.")
}
