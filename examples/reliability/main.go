// Reliability demo: a miniature Figure 8 / Section 5.3. Repeatedly
// downloads a file over snowflake while volunteer proxies churn, then
// applies the post-September load scenario and shows the degradation
// the paper measured during the Iran unrest.
package main

import (
	"fmt"
	"log"
	"time"

	"ptperf/internal/fetch"
	"ptperf/internal/testbed"
)

func main() {
	world, err := testbed.New(testbed.Options{
		Seed:      17,
		ByteScale: 0.03,
		TrancoN:   3, CBLN: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	dep, err := world.Deployment("snowflake")
	if err != nil {
		log.Fatal(err)
	}

	attempt := func(label string) {
		size := world.Bytes(20 << 20)
		complete, partial := 0, 0
		var fractions []float64
		for i := 0; i < 5; i++ {
			dep.FreshCircuit()
			if err := dep.Preheat(); err != nil {
				fractions = append(fractions, 0)
				partial++
				continue
			}
			client := &fetch.Client{Net: world.Net, Dial: dep.Dial, Timeout: 600 * time.Second}
			res := client.DownloadFile(world.Origin.Addr(), size)
			fractions = append(fractions, res.Fraction())
			if res.Complete() {
				complete++
			} else {
				partial++
			}
		}
		fmt.Printf("%-22s complete=%d incomplete=%d fractions=", label, complete, partial)
		for _, f := range fractions {
			fmt.Printf(" %3.0f%%", f*100)
		}
		fmt.Println()
	}

	// Pre-surge: long-lived volunteers, light load.
	dep.Snowflake().SetLoad(0.1, 300*time.Second)
	attempt("pre-September load")

	// Post-surge (§5.3): saturated volunteers that disappear quickly.
	dep.Snowflake().SetLoad(0.85, 15*time.Second)
	attempt("post-September load")

	fmt.Println("\nA proxy dying mid-transfer aborts the tunnel: downloads finish only")
	fmt.Println("partially, which users can mistake for the transport being blocked (§4.6).")
}
