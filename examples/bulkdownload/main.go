// Bulk-download comparison: a miniature Figure 5. Downloads files of
// growing size through a fast transport (obfs4) and a rate-limited one
// (camoufler), showing how the communication primitive dominates bulk
// performance.
package main

import (
	"fmt"
	"log"
	"time"

	"ptperf/internal/fetch"
	"ptperf/internal/testbed"
)

func main() {
	world, err := testbed.New(testbed.Options{
		Seed:      13,
		ByteScale: 0.03, // small files keep the example quick
		TrancoN:   2, CBLN: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	sizesMB := []int{5, 10, 20}
	methods := []string{"obfs4", "camoufler"}

	fmt.Printf("%-10s", "size")
	for _, m := range methods {
		fmt.Printf(" %12s", m)
	}
	fmt.Println()

	for _, mb := range sizesMB {
		size := world.Bytes(mb << 20)
		fmt.Printf("%-10s", fmt.Sprintf("%dMB", mb))
		for _, method := range methods {
			dep, err := world.Deployment(method)
			if err != nil {
				log.Fatal(err)
			}
			if err := dep.Preheat(); err != nil {
				log.Fatal(err)
			}
			client := &fetch.Client{Net: world.Net, Dial: dep.Dial, Timeout: 1200 * time.Second}
			res := client.DownloadFile(world.Origin.Addr(), size)
			if res.Complete() {
				fmt.Printf(" %11.1fs", res.Total.Seconds())
			} else {
				fmt.Printf(" %8.0f%%/to", res.Fraction()*100)
			}
		}
		fmt.Println()
	}
	fmt.Println("\ncamoufler pays the IM provider's per-account message rate limit on")
	fmt.Println("every chunk; obfs4 is only bounded by the circuit's bandwidth (§4.3).")
}
