package ptperf

// One benchmark per table and figure of the paper's evaluation section,
// plus ablations for the design choices called out in DESIGN.md. Each
// benchmark runs the corresponding harness experiment end to end on a
// small campaign; reported metrics are virtual seconds, so shapes are
// comparable to the paper even though the campaign is miniaturized.

import (
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"ptperf/internal/fetch"
	"ptperf/internal/geo"
	"ptperf/internal/harness"
	"ptperf/internal/netem"
	"ptperf/internal/pt"
	"ptperf/internal/pt/camoufler"
	"ptperf/internal/pt/dnstt"
	"ptperf/internal/pt/stegotorus"
	"ptperf/internal/stats"
	"ptperf/internal/testbed"
	"ptperf/internal/web"
)

// benchConfig is the miniature campaign used by the per-artifact
// benchmarks.
func benchConfig(seed int64) harness.Config {
	return harness.Config{
		Seed:         seed,
		ByteScale:    0.06,
		Sites:        4,
		Repeats:      1,
		FileAttempts: 1,
		FileSizesMB:  []int{5, 10},
	}
}

// runExperiment executes one harness experiment b.N times.
func runExperiment(b *testing.B, id string, mut func(*harness.Config)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(int64(i) + 1)
		if mut != nil {
			mut(&cfg)
		}
		r := harness.New(cfg, io.Discard)
		if err := r.Run(id); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkTable1Overview(b *testing.B) { runExperiment(b, "table1", nil) }

func BenchmarkFig2aCurlAccess(b *testing.B) { runExperiment(b, "fig2a", nil) }
func BenchmarkFig2bSeleniumAccess(b *testing.B) {
	runExperiment(b, "fig2b", nil)
}
func BenchmarkFig3aFixedCircuit(b *testing.B)     { runExperiment(b, "fig3", nil) }
func BenchmarkFig3bFixedCircuitECDF(b *testing.B) { runExperiment(b, "fig3", nil) }
func BenchmarkFig4FixedGuard(b *testing.B)        { runExperiment(b, "fig4", nil) }
func BenchmarkFig5FileDownload(b *testing.B)      { runExperiment(b, "fig5", nil) }
func BenchmarkFig6TTFB(b *testing.B)              { runExperiment(b, "fig6", nil) }
func BenchmarkFig7Locations(b *testing.B) {
	runExperiment(b, "fig7", func(c *harness.Config) { c.Sites = 3 })
}
func BenchmarkFig8aReliability(b *testing.B)      { runExperiment(b, "fig8", nil) }
func BenchmarkFig8bDownloadFraction(b *testing.B) { runExperiment(b, "fig8", nil) }
func BenchmarkFig9Overhead(b *testing.B) {
	runExperiment(b, "fig9", func(c *harness.Config) { c.Sites = 3 })
}
func BenchmarkFig10SnowflakeLoad(b *testing.B)   { runExperiment(b, "fig10", nil) }
func BenchmarkFig11SpeedIndex(b *testing.B)      { runExperiment(b, "fig11", nil) }
func BenchmarkFig12SnowflakeMonths(b *testing.B) { runExperiment(b, "fig12", nil) }
func BenchmarkTables34PairedTCurl(b *testing.B)  { runExperiment(b, "table3", nil) }
func BenchmarkTables56PairedTSelenium(b *testing.B) {
	runExperiment(b, "table5", nil)
}
func BenchmarkTable7PairedTFile(b *testing.B) { runExperiment(b, "table7", nil) }
func BenchmarkTables89PairedTSpeedIndex(b *testing.B) {
	runExperiment(b, "table8", nil)
}
func BenchmarkTable10CategoryPairs(b *testing.B) { runExperiment(b, "table10", nil) }

// BenchmarkScenarioSweep exercises the censor layer end to end:
// {transports} × {scenarios} with throttling, loss draws, blocking
// cutovers and the snowflake surge timeline. Jobs is pinned to 1 so
// this stays the sequential baseline BenchmarkSweepParallel is
// measured against.
func BenchmarkScenarioSweep(b *testing.B) {
	runExperiment(b, "sweep", func(c *harness.Config) {
		c.Transports = []string{"tor", "obfs4", "meek", "snowflake"}
		c.Jobs = 1
	})
}

// BenchmarkSweepParallel is the same sweep on the multi-world shard
// executor (one world task per scenario cell, -jobs = all cores). The
// report is byte-identical to the sequential run; on a ≥4-core machine
// ns/op should drop ≥2.5× versus BenchmarkScenarioSweep. CI computes
// the ratio from BENCH_results.json.
func BenchmarkSweepParallel(b *testing.B) {
	runExperiment(b, "sweep", func(c *harness.Config) {
		c.Transports = []string{"tor", "obfs4", "meek", "snowflake"}
		c.Jobs = 0 // GOMAXPROCS
	})
}

// BenchmarkContentionSweep exercises the relay cell scheduler end to
// end: the guard-contention family's four load levels plus the FIFO
// baseline cell, with competitor fleets, EWMA priority and KIST-style
// write budgeting all on the virtual clock. Jobs is pinned to 1 so
// ns/op is core-count-independent and the benchdiff ratio gate applies
// to it like any other benchmark (no SweepParallel-style exclusion).
func BenchmarkContentionSweep(b *testing.B) {
	runExperiment(b, "contention", func(c *harness.Config) {
		c.Sites = 2
		c.Jobs = 1
	})
}

// BenchmarkChurnSweep exercises the fault-injection subsystem end to
// end: the churn family's {none,slow,fast} levels across four methods,
// with relay crashes/restarts, link flaps, directory churn, client-side
// retry/backoff/probation and resumable downloads all on the virtual
// clock. Jobs is pinned to 1 so ns/op is core-count-independent and the
// benchdiff ratio gate applies to it like any other benchmark.
func BenchmarkChurnSweep(b *testing.B) {
	runExperiment(b, "churn", func(c *harness.Config) {
		c.Sites = 2
		c.Jobs = 1
	})
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationGuardLoad toggles the volunteer-guard utilization gap
// that explains §4.2.1 (PT bridges beating vanilla Tor). The reported
// metrics are mean selenium page-load times for vanilla Tor with busy
// vs. idle volunteer guards.
func BenchmarkAblationGuardLoad(b *testing.B) {
	measure := func(util [2]float64, seed int64) float64 {
		w, err := testbed.New(testbed.Options{
			Seed: seed, ByteScale: 0.06,
			TrancoN: 3, CBLN: 3,
			GuardUtilization: util,
		})
		if err != nil {
			b.Fatal(err)
		}
		d, err := w.Deployment("tor")
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Preheat(); err != nil {
			b.Fatal(err)
		}
		c := &fetch.Client{Net: w.Net, Dial: d.Dial}
		var xs []float64
		for _, site := range w.Tranco.Sites {
			pr := c.Browse(w.Origin.Addr(), site.Path, 6)
			xs = append(xs, pr.PageLoadTime.Seconds())
		}
		return stats.Mean(xs)
	}
	for i := 0; i < b.N; i++ {
		busy := measure([2]float64{0.7, 0.85}, int64(i)+1)
		idle := measure([2]float64{0.05, 0.1}, int64(i)+1)
		b.ReportMetric(busy, "busy-guard-s")
		b.ReportMetric(idle, "idle-guard-s")
	}
}

// ablationWorld is a two-host micro-world for transport-only ablations:
// client fetches a file straight through the PT (no Tor), isolating the
// design knob under test.
type ablationWorld struct {
	net    *netem.Network
	client *netem.Host
	server *netem.Host
	extra  *netem.Host
	origin *web.Origin
}

func newAblationWorld(b *testing.B, seed int64) *ablationWorld {
	b.Helper()
	n := netem.New(netem.WithSeed(seed))
	w := &ablationWorld{
		net:    n,
		client: n.MustAddHost(netem.HostConfig{Name: "client", Location: geo.Toronto}),
		server: n.MustAddHost(netem.HostConfig{Name: "pt-server", Location: geo.Frankfurt}),
		extra:  n.MustAddHost(netem.HostConfig{Name: "aux", Location: geo.Frankfurt}),
	}
	originHost := n.MustAddHost(netem.HostConfig{Name: "origin", Location: geo.NewYork})
	o, err := web.StartOrigin(originHost, 80)
	if err != nil {
		b.Fatal(err)
	}
	w.origin = o
	return w
}

// fetchThrough measures one bulk fetch through a dialer.
func (w *ablationWorld) fetchThrough(b *testing.B, d pt.Dialer, size int) float64 {
	b.Helper()
	c := &fetch.Client{
		Net: w.net,
		Dial: func(target string) (net.Conn, error) {
			return d.Dial(target)
		},
		Timeout: 600 * time.Second,
	}
	res := c.DownloadFile(w.origin.Addr(), size)
	if !res.Complete() {
		return 600
	}
	return res.Total.Seconds()
}

// BenchmarkAblationDnsttCap compares dnstt's 512-byte response cap with
// an uncapped variant — the knob the paper blames for dnstt's bulk
// behaviour.
func BenchmarkAblationDnsttCap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(respCap int, port int) float64 {
			w := newAblationWorld(b, int64(i)*10+int64(port))
			cfg := dnstt.Config{Seed: 3, RespCap: respCap, BudgetMedian: -1}
			srv, err := dnstt.StartServer(w.server, port, cfg, pt.ForwardTo(w.server))
			if err != nil {
				b.Fatal(err)
			}
			res, err := dnstt.StartResolver(w.extra, port+1, cfg, srv.Addr())
			if err != nil {
				b.Fatal(err)
			}
			return w.fetchThrough(b, dnstt.NewDialer(w.client, res.Addr(), cfg), 512<<10)
		}
		b.ReportMetric(run(512, 5300), "cap512-s")
		b.ReportMetric(run(16<<10, 5400), "uncapped-s")
	}
}

// BenchmarkAblationCamouflerRate compares the IM provider's API rate
// limit against an effectively unlimited one.
func BenchmarkAblationCamouflerRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(rate float64, port int) float64 {
			w := newAblationWorld(b, int64(i)*10+int64(port))
			cfg := camoufler.Config{Seed: 4, RatePerSec: rate, LossProb: -1}
			im, err := camoufler.StartIMServer(w.extra, port, cfg)
			if err != nil {
				b.Fatal(err)
			}
			proxy, err := camoufler.StartProxy(w.server, im.Addr(), fmt.Sprintf("a%d", port), cfg, pt.ForwardTo(w.server))
			if err != nil {
				b.Fatal(err)
			}
			d := camoufler.NewDialer(w.client, im.Addr(), fmt.Sprintf("a%d", port), cfg, proxy)
			// Large enough that the message rate, not latency, binds.
			return w.fetchThrough(b, d, 2<<20)
		}
		b.ReportMetric(run(camoufler.DefaultRatePerSec, 5222), "rate-limited-s")
		b.ReportMetric(run(10000, 5223), "unlimited-s")
	}
}

// BenchmarkAblationChopperConns sweeps stegotorus's chopper fan-out.
func BenchmarkAblationChopperConns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, conns := range []int{1, 2, 4, 8} {
			w := newAblationWorld(b, int64(i)*100+int64(conns))
			cfg := stegotorus.Config{Seed: 5, Conns: conns}
			srv, err := stegotorus.StartServer(w.server, 8080, cfg, pt.ForwardTo(w.server))
			if err != nil {
				b.Fatal(err)
			}
			d := stegotorus.NewDialer(w.client, srv.Addr(), cfg)
			secs := w.fetchThrough(b, d, 256<<10)
			b.ReportMetric(secs, fmt.Sprintf("conns%d-s", conns))
		}
	}
}
